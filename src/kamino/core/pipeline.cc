#include "kamino/core/pipeline.h"

#include <limits>
#include <utility>

#include "kamino/core/params.h"
#include "kamino/core/sequencing.h"
#include "kamino/core/weights.h"
#include "kamino/obs/metrics.h"
#include "kamino/obs/trace.h"
#include "kamino/runtime/thread_pool.h"

namespace kamino {
namespace {

/// Applies the run's observability knobs to the process-wide recorder and
/// registry. Monotone: a run asking for tracing/metrics turns them on;
/// runs that don't leave the global state alone, so concurrent traced and
/// untraced jobs compose (last-enabler semantics, like `num_threads`).
void ApplyObservabilityOptions(const KaminoOptions& options) {
  if (options.enable_tracing) {
    obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
    recorder.SetCapacity(options.trace_capacity_events);
    recorder.SetEnabled(true);
  }
  if (options.enable_metrics) {
    obs::MetricsRegistry::Global().SetEnabled(true);
  }
}

}  // namespace

Result<FitArtifacts> FitPipeline(
    const Table& data, const std::vector<WeightedConstraint>& constraints,
    const KaminoConfig& config) {
  KAMINO_RETURN_IF_ERROR(config.Validate());
  if (data.num_rows() == 0) {
    return Status::InvalidArgument("input instance is empty");
  }
  // Configure the parallel runtime for this run. Output is bit-identical
  // at any budget (parallel regions key randomness by task index and
  // reduce in fixed order), so the knob trades wall clock only.
  runtime::SetGlobalNumThreads(config.options.num_threads);
  ApplyObservabilityOptions(config.options);

  Rng rng(config.options.seed);
  FitArtifacts fitted;
  fitted.input_rows = data.num_rows();
  fitted.fit_timings.num_threads = runtime::GlobalNumThreads();

  // The span tree is the stopwatch: each stage's PhaseTimings entry is
  // the measured duration of its span (Finish() returns it whether or not
  // trace recording is enabled).
  obs::TraceSpan fit_span("fit");
  fit_span.AddArg("rows", static_cast<int64_t>(data.num_rows()));
  fit_span.AddArg("constraints", static_cast<int64_t>(constraints.size()));

  // Line 2: schema sequencing (Algorithm 4) - no privacy cost.
  {
    obs::TraceSpan span("fit/sequencing");
    fitted.sequence = config.options.random_sequence
                          ? RandomSequence(data.schema(), &rng)
                          : SequenceSchema(data.schema(), constraints);
    fitted.fit_timings.sequencing = span.Finish();
  }

  // Decide whether weight learning will run: only when requested and some
  // constraint is soft.
  bool learn_weights = false;
  if (config.learn_weights) {
    for (const WeightedConstraint& wc : constraints) {
      if (!wc.hard) learn_weights = true;
    }
  }

  // Line 3: parameter search (Algorithm 6) - no privacy cost (schema and
  // domain are public).
  KaminoOptions options = config.options;
  {
    obs::TraceSpan span("fit/parameter_search");
    if (!options.non_private) {
      KAMINO_ASSIGN_OR_RETURN(
          options, SearchDpParameters(config.epsilon, config.delta,
                                      data.schema(), fitted.sequence,
                                      data.num_rows(), learn_weights,
                                      config.options));
    }
    fitted.resolved_options = options;
    fitted.fit_timings.parameter_search = span.Finish();
  }

  // Line 4: model training (Algorithm 2) - Gaussian mechanism + DP-SGD.
  {
    obs::TraceSpan span("fit/training");
    KAMINO_ASSIGN_OR_RETURN(
        fitted.model,
        ProbabilisticDataModel::Train(data, fitted.sequence, options, &rng));
    fitted.fit_timings.training = span.Finish();
  }

  // Line 5: DC weight learning (Algorithm 5) - sampled Gaussian mechanism.
  {
    obs::TraceSpan span("fit/weights");
    fitted.weighted = constraints;
    if (learn_weights) {
      KAMINO_ASSIGN_OR_RETURN(
          fitted.dc_weights,
          LearnDcWeights(data, constraints, fitted.sequence, options, &rng));
      for (size_t l = 0; l < fitted.weighted.size(); ++l) {
        if (!fitted.weighted[l].hard) {
          fitted.weighted[l].weight = fitted.dc_weights[l];
        }
      }
    } else {
      fitted.dc_weights.reserve(constraints.size());
      for (const WeightedConstraint& wc : constraints) {
        fitted.dc_weights.push_back(wc.EffectiveWeight());
      }
    }
    fitted.fit_timings.violation_matrix = span.Finish();
  }

  fitted.epsilon_spent =
      options.non_private
          ? std::numeric_limits<double>::infinity()
          : PrivacyCostEpsilon(options, data.num_rows(),
                               fitted.model.num_histogram_units(),
                               fitted.model.num_discriminative_units(),
                               learn_weights, config.delta);

  // Snapshot the run RNG: sampling resumes exactly where the fit left
  // off, so Fit + Sample drains the same stream as the monolithic run.
  fitted.sampling_engine = rng.engine();
  return fitted;
}

Result<Table> SamplePipeline(const FitArtifacts& fitted,
                             const SampleSpec& spec,
                             const SynthesisHooks* hooks,
                             SynthesisTelemetry* telemetry,
                             PhaseTimings* timings) {
  KaminoOptions options = fitted.resolved_options;
  if (spec.num_shards != SampleSpec::kUnset) {
    options.num_shards = spec.num_shards;
  }
  if (spec.num_threads != SampleSpec::kUnset) {
    options.num_threads = spec.num_threads;
    runtime::SetGlobalNumThreads(spec.num_threads);
  }
  if (spec.compress_chunks) options.compress_chunks = true;
  if (spec.progressive_merge) options.progressive_merge = true;
  if (spec.out_of_core) {
    options.out_of_core = true;
    options.progressive_merge = true;
  }
  ApplyObservabilityOptions(options);
  const size_t n = spec.num_rows == 0 ? fitted.input_rows : spec.num_rows;

  // seed == 0 resumes the fit snapshot (the RunKamino-identical stream);
  // anything else is an independent per-request stream.
  Rng rng(spec.seed);
  if (spec.seed == 0) rng.engine() = fitted.sampling_engine;

  SynthesisTelemetry local_telemetry;
  if (telemetry == nullptr) telemetry = &local_telemetry;
  obs::TraceSpan span("synthesize");
  span.AddArg("rows", static_cast<int64_t>(n));
  span.AddArg("seed", static_cast<int64_t>(spec.seed));
  KAMINO_ASSIGN_OR_RETURN(
      Table out, Synthesize(fitted.model, fitted.weighted, n, options, &rng,
                            telemetry, hooks));
  // The sampling phase is the synthesize span's duration; the merge
  // sub-phase is the shard_merge span's duration (surfaced through
  // telemetry by the sampler) — both derived from the span tree.
  const double sampling_seconds = span.Finish();
  if (timings != nullptr) {
    timings->sampling = sampling_seconds;
    timings->shard_merge = telemetry->merge_seconds;
    timings->num_shards = telemetry->num_shards;
    timings->num_threads = runtime::GlobalNumThreads();
  }
  return out;
}

}  // namespace kamino
