#ifndef KAMINO_CORE_SAMPLER_H_
#define KAMINO_CORE_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "kamino/common/status.h"
#include "kamino/core/model.h"
#include "kamino/core/options.h"
#include "kamino/data/table.h"
#include "kamino/dc/constraint.h"

namespace kamino {

/// A contiguous slice of the synthetic instance, delivered through
/// `SynthesisHooks::on_chunk` once its rows are final (the shard has
/// cleared reconciliation — no later pipeline step will rewrite them).
struct TableChunk {
  /// Shard that sampled these rows (chunks arrive in ascending shard
  /// order; a single-shard run delivers exactly one chunk, shard 0).
  size_t shard = 0;
  /// Global row index of `rows.row(0)` in the assembled instance.
  size_t row_offset = 0;
  /// The slice's rows, in final (reconciled) form. When the run delivers
  /// compressed payloads (`KaminoOptions::compress_chunks`) this table is
  /// schema-only (zero rows) and `encoded` carries the slice instead.
  Table rows;
  /// Compressed per-column payload (`EncodeChunkColumns`), non-empty only
  /// under `compress_chunks`. Decode with `DecodeChunkColumns` against
  /// `rows.schema()`.
  std::vector<uint8_t> encoded;
  /// Row count carried by `encoded` (0 when delivering materialized rows).
  size_t encoded_rows = 0;
  /// True on the final chunk of the run — together the chunks tile
  /// [0, n) without gap or overlap.
  bool last = false;

  bool compressed() const { return !encoded.empty(); }
  /// Rows in this chunk regardless of representation — row accounting
  /// must use this, not `rows.num_rows()`.
  size_t num_rows() const { return compressed() ? encoded_rows : rows.num_rows(); }
};

/// Observer/control hooks threaded through `Synthesize` by the session
/// engine (`kamino/service/`). All hooks are optional (leave the
/// std::function empty); a null hooks pointer means "run to completion,
/// return only the final table".
struct SynthesisHooks {
  /// Cooperative cancellation: polled at every shard boundary and at
  /// every column-group (model unit) boundary inside a shard, and between
  /// chunk deliveries. Returning false makes `Synthesize` stop at the
  /// next poll and return StatusCode::kCancelled. May be invoked
  /// concurrently from pool workers; implementations must be
  /// thread-safe (an atomic flag read suffices).
  std::function<bool()> keep_going;
  /// Progress: invoked once per shard as soon as that shard's sampling
  /// loop has produced all of its rows (before merge/reconciliation).
  /// May be invoked concurrently from pool workers.
  std::function<void(size_t rows_in_shard)> on_rows_sampled;
  /// Streaming delivery, called serially from the synthesizing thread:
  /// chunks arrive in ascending `row_offset` order, each shard exactly
  /// once, tiling [0, n), every row in final reconciled form, and all
  /// before `Synthesize` returns. A non-OK return aborts the run with
  /// that status.
  std::function<Status(const TableChunk&)> on_chunk;
  /// The caller consumes the run through `on_chunk` only and will drop
  /// the returned table (the engine sets this when `collect_table` is
  /// off). Under `out_of_core` this lets the sampler skip re-reading the
  /// spilled slices to rebuild the full table and return a schema-only
  /// one instead — the truly constant-memory delivery path. Ignored by
  /// in-memory runs (the table already exists; returning it is free).
  bool discard_result = false;
};

/// Counters describing one synthesis run (for the optimization
/// experiments).
struct SynthesisTelemetry {
  /// Total accept-reject proposals drawn (AR mode only).
  int64_t ar_proposals = 0;
  /// Cells whose value was forced through the hard-FD lookup fast path.
  int64_t fd_fast_path_hits = 0;
  /// Cells re-sampled by the constrained MCMC pass.
  int64_t mcmc_resamples = 0;
  /// Thread budget the run executed with (resolved; >= 1).
  size_t num_threads = 1;
  /// Candidate-set scorings dispatched through the parallel runtime (the
  /// rest ran inline because the set or the committed prefix was small).
  int64_t parallel_score_dispatches = 0;
  /// Row batches executed by the parallel MCMC pass.
  int64_t mcmc_batches = 0;

  // --- Shard-parallel synthesis (resolved num_shards > 1) ---
  /// Shards the run was partitioned into (resolved; >= 1).
  size_t num_shards = 1;
  /// Cross-shard violating pairs found by the fixed-order index merge
  /// (violations the per-shard sampling could not see).
  int64_t merge_cross_violations = 0;
  /// Rows that participated in at least one cross-shard violation.
  int64_t merge_conflict_rows = 0;
  /// Re-samples spent by the bounded reconciliation repair.
  int64_t merge_resamples = 0;
  /// Re-sample budget the reconciliation sweep resolved to (the fixed
  /// `shard_merge_resamples` knob, or the adaptively scaled value derived
  /// from the conflict count when `adaptive_merge_budget` is on).
  int64_t merge_budget = 0;
  /// Reconciliation sweeps cut short because consecutive repairs stopped
  /// reducing the weighted violation penalty (adaptive mode only).
  int64_t merge_early_stops = 0;
  /// Weighted soft-DC violation penalty removed by the shard merge:
  /// sum over soft DCs of weight * violations, measured before minus
  /// after reconciliation (positive = the merge also helped soft DCs;
  /// zero when the run has no soft DCs). Soft DCs whose decomposition is
  /// `kGeneral` are excluded — counting those costs an O(n^2) pair scan,
  /// too much to pay twice for a telemetry field.
  double merge_soft_penalty_delta = 0.0;
  /// Wall-clock seconds spent measuring the soft-DC penalty around the
  /// merge (included in `merge_seconds`).
  double merge_soft_seconds = 0.0;
  /// Cells rewritten by the final hard-FD canonicalization sweep.
  int64_t merge_fd_rewrites = 0;
  /// Cells moved by the hard-order-DC rank alignment (a permutation of
  /// the sampled values, so per-value marginals are unchanged).
  int64_t merge_order_alignments = 0;
  /// Wall-clock seconds of the merge + reconciliation pass (included in
  /// the sampling phase timing). Under `progressive_merge` this is the
  /// sum of the per-freeze `sampler/prefix_merge` spans.
  double merge_seconds = 0.0;
  /// Prefix freezes performed by the progressive merge
  /// (`KaminoOptions::progressive_merge`): one per shard, each ending
  /// with the frozen prefix hard-DC exact and its chunk emitted. Zero on
  /// global-merge runs.
  int64_t merge_prefix_freezes = 0;
  /// Rows frozen (made immutable and eligible for delivery) by those
  /// freezes; equals the row count on a completed progressive run.
  int64_t merge_frozen_rows = 0;
  /// Partner rows pair-scanned by the freeze repair's penalty kernel in
  /// *live* (not yet frozen) tables. Under progressive merge the kernel
  /// scores candidates as index-delta (`CountNew` against the merged
  /// indices) + live pair scan, so...
  int64_t merge_penalty_live_row_scans = 0;
  /// ...this stays zero: frozen rows are never re-scanned. Asserted by
  /// tests; a nonzero value means the constant-memory contract broke.
  int64_t merge_penalty_frozen_row_scans = 0;

  // --- Out-of-core spill (`KaminoOptions::out_of_core`) ---
  /// Frozen-slice blocks sealed into the spill file (one per freeze).
  int64_t spill_blocks = 0;
  /// Bytes appended to the spill file (chunk-codec payloads + framing).
  int64_t spill_bytes = 0;
  /// Rows written to the spill store (equals n on a completed run).
  int64_t spilled_rows = 0;
  /// High-water mark of rows resident in materialized tables at any
  /// point of the run (dispatched shard tables + the slice being frozen
  /// + the accumulated output). Out-of-core runs bound this to ~2 shard
  /// widths; in-memory runs grow it to n.
  int64_t peak_resident_rows = 0;
  /// Seconds from job start (after dequeue — queue wait excluded) to the
  /// first `TableChunk` handed to the `RowSink`. Filled by the service
  /// engine, not the sampler; 0 when the run streamed no chunks. Also
  /// recorded into the `kamino.service.first_chunk_seconds` histogram
  /// when metrics are enabled.
  double first_chunk_seconds = 0.0;
};

/// Algorithm 3: constraint-aware database instance sampling.
///
/// Builds a synthetic instance of `n` rows column-group by column-group in
/// schema-sequence order. For every cell it combines the learned
/// conditional probability p_{v|c} with the DC factor
/// exp(-sum_phi w_phi * new_violations(v)) over the DCs whose attributes
/// are fully sampled at this point (Phi_{A_j}), and samples from the
/// normalized product (line 10). Honors the options' ablation switches:
/// i.i.d. sampling (RandSampling), accept-reject sampling, the hard-FD
/// fast path, and `mcmc_resamples` rounds of constrained re-sampling per
/// column.
///
/// When `options.num_shards` resolves to more than one, the rows are
/// partitioned into contiguous shards sampled concurrently (each shard
/// drives the full per-row loop over its slice from its own RngStream
/// sub-seed with per-shard violation indices), then the per-shard DC
/// indices are merged in fixed shard order and a bounded reconciliation
/// pass re-scores/repairs rows whose FD groups or order-DC ranges span
/// shards; hard FDs are canonicalized exactly. The output is a pure
/// function of (seed, num_shards) — bit-identical at any `num_threads` —
/// and `num_shards == 1` reproduces the sequential paper semantics
/// exactly.
///
/// Runs entirely on the learned model - a post-processing step with no
/// additional privacy cost.
///
/// `hooks` (optional) adds cooperative cancellation, per-shard progress
/// callbacks and streaming chunk delivery — see `SynthesisHooks` for the
/// delivery-order contract. Passing hooks never changes the synthesized
/// rows: the hooks observe the run, they do not steer it.
Result<Table> Synthesize(const ProbabilisticDataModel& model,
                         const std::vector<WeightedConstraint>& constraints,
                         size_t n, const KaminoOptions& options, Rng* rng,
                         SynthesisTelemetry* telemetry = nullptr,
                         const SynthesisHooks* hooks = nullptr);

}  // namespace kamino

#endif  // KAMINO_CORE_SAMPLER_H_
