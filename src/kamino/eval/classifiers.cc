#include "kamino/eval/classifiers.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "kamino/common/logging.h"

namespace kamino {
namespace {

constexpr size_t kOneHotLimit = 12;

double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

// ---------------------------------------------------------------------------
// Logistic regression (SGD).
// ---------------------------------------------------------------------------
class LogisticRegression : public BinaryClassifier {
 public:
  void Fit(const LabeledData& train, Rng* rng) override {
    (void)rng;
    if (train.x.empty()) return;
    w_.assign(train.x[0].size(), 0.0);
    b_ = 0.0;
    const double lr = 0.1;
    for (int epoch = 0; epoch < 30; ++epoch) {
      for (size_t i = 0; i < train.x.size(); ++i) {
        double z = b_;
        for (size_t f = 0; f < w_.size(); ++f) z += w_[f] * train.x[i][f];
        const double err = Sigmoid(z) - train.y[i];
        for (size_t f = 0; f < w_.size(); ++f) {
          w_[f] -= lr * (err * train.x[i][f] + 1e-4 * w_[f]);
        }
        b_ -= lr * err;
      }
    }
  }

  int Predict(const std::vector<double>& x) const override {
    double z = b_;
    for (size_t f = 0; f < w_.size() && f < x.size(); ++f) z += w_[f] * x[f];
    return z > 0.0 ? 1 : 0;
  }

  std::string name() const override { return "LogisticRegression"; }

 private:
  std::vector<double> w_;
  double b_ = 0.0;
};

// ---------------------------------------------------------------------------
// Gaussian naive Bayes.
// ---------------------------------------------------------------------------
class GaussianNaiveBayes : public BinaryClassifier {
 public:
  void Fit(const LabeledData& train, Rng* rng) override {
    (void)rng;
    if (train.x.empty()) return;
    const size_t d = train.x[0].size();
    for (int c = 0; c < 2; ++c) {
      mean_[c].assign(d, 0.0);
      var_[c].assign(d, 0.0);
      count_[c] = 0;
    }
    for (size_t i = 0; i < train.x.size(); ++i) {
      const int c = train.y[i];
      ++count_[c];
      for (size_t f = 0; f < d; ++f) mean_[c][f] += train.x[i][f];
    }
    for (int c = 0; c < 2; ++c) {
      if (count_[c] == 0) continue;
      for (size_t f = 0; f < d; ++f) mean_[c][f] /= count_[c];
    }
    for (size_t i = 0; i < train.x.size(); ++i) {
      const int c = train.y[i];
      for (size_t f = 0; f < d; ++f) {
        const double diff = train.x[i][f] - mean_[c][f];
        var_[c][f] += diff * diff;
      }
    }
    for (int c = 0; c < 2; ++c) {
      if (count_[c] == 0) continue;
      for (size_t f = 0; f < d; ++f) {
        var_[c][f] = var_[c][f] / count_[c] + 1e-3;
      }
    }
    total_ = train.x.size();
  }

  int Predict(const std::vector<double>& x) const override {
    double best_score = -std::numeric_limits<double>::infinity();
    int best = 0;
    for (int c = 0; c < 2; ++c) {
      if (count_[c] == 0) continue;
      double score =
          std::log(static_cast<double>(count_[c]) / std::max<size_t>(1, total_));
      for (size_t f = 0; f < x.size() && f < mean_[c].size(); ++f) {
        const double diff = x[f] - mean_[c][f];
        score += -0.5 * (diff * diff / var_[c][f] + std::log(var_[c][f]));
      }
      if (score > best_score) {
        best_score = score;
        best = c;
      }
    }
    return best;
  }

  std::string name() const override { return "GaussianNB"; }

 private:
  std::vector<double> mean_[2];
  std::vector<double> var_[2];
  size_t count_[2] = {0, 0};
  size_t total_ = 0;
};

// ---------------------------------------------------------------------------
// CART decision tree (gini).
// ---------------------------------------------------------------------------
class DecisionTree : public BinaryClassifier {
 public:
  explicit DecisionTree(int max_depth = 6, size_t min_leaf = 4)
      : max_depth_(max_depth), min_leaf_(min_leaf) {}

  void Fit(const LabeledData& train, Rng* rng) override {
    (void)rng;
    nodes_.clear();
    std::vector<size_t> index(train.x.size());
    for (size_t i = 0; i < index.size(); ++i) index[i] = i;
    Build(train, index, 0);
  }

  /// Fit on a bootstrap subset with optional feature subsampling (used by
  /// the forest).
  void FitSubset(const LabeledData& train, const std::vector<size_t>& index,
                 const std::vector<size_t>& features) {
    nodes_.clear();
    allowed_features_ = features;
    Build(train, index, 0);
    allowed_features_.clear();
  }

  int Predict(const std::vector<double>& x) const override {
    if (nodes_.empty()) return 0;
    size_t node = 0;
    while (!nodes_[node].leaf) {
      node = x[nodes_[node].feature] <= nodes_[node].threshold
                 ? nodes_[node].left
                 : nodes_[node].right;
    }
    return nodes_[node].label;
  }

  std::string name() const override { return "DecisionTree"; }

 private:
  struct TreeNode {
    bool leaf = true;
    int label = 0;
    size_t feature = 0;
    double threshold = 0.0;
    size_t left = 0;
    size_t right = 0;
  };

  static double Gini(size_t pos, size_t total) {
    if (total == 0) return 0.0;
    const double p = static_cast<double>(pos) / total;
    return 2.0 * p * (1.0 - p);
  }

  size_t Build(const LabeledData& train, const std::vector<size_t>& index,
               int depth) {
    const size_t node_id = nodes_.size();
    nodes_.push_back(TreeNode());
    size_t pos = 0;
    for (size_t i : index) pos += train.y[i];
    nodes_[node_id].label = pos * 2 >= index.size() ? 1 : 0;
    if (depth >= max_depth_ || index.size() < 2 * min_leaf_ || pos == 0 ||
        pos == index.size()) {
      return node_id;
    }

    const size_t d = train.x.empty() ? 0 : train.x[0].size();
    double best_gain = 1e-9;
    size_t best_feature = 0;
    double best_threshold = 0.0;
    const double parent_gini = Gini(pos, index.size());

    std::vector<size_t> features;
    if (allowed_features_.empty()) {
      for (size_t f = 0; f < d; ++f) features.push_back(f);
    } else {
      features = allowed_features_;
    }

    std::vector<double> values;
    for (size_t f : features) {
      values.clear();
      for (size_t i : index) values.push_back(train.x[i][f]);
      std::sort(values.begin(), values.end());
      values.erase(std::unique(values.begin(), values.end()), values.end());
      if (values.size() < 2) continue;
      // Candidate thresholds: up to 16 quantile midpoints.
      const size_t steps = std::min<size_t>(16, values.size() - 1);
      for (size_t s = 1; s <= steps; ++s) {
        const size_t vi = s * (values.size() - 1) / (steps + 1);
        const double threshold = 0.5 * (values[vi] + values[vi + 1]);
        size_t left_n = 0, left_pos = 0;
        for (size_t i : index) {
          if (train.x[i][f] <= threshold) {
            ++left_n;
            left_pos += train.y[i];
          }
        }
        const size_t right_n = index.size() - left_n;
        if (left_n < min_leaf_ || right_n < min_leaf_) continue;
        const size_t right_pos = pos - left_pos;
        const double child_gini =
            (left_n * Gini(left_pos, left_n) + right_n * Gini(right_pos, right_n)) /
            index.size();
        const double gain = parent_gini - child_gini;
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = f;
          best_threshold = threshold;
        }
      }
    }
    if (best_gain <= 1e-9) return node_id;

    std::vector<size_t> left_index, right_index;
    for (size_t i : index) {
      if (train.x[i][best_feature] <= best_threshold) {
        left_index.push_back(i);
      } else {
        right_index.push_back(i);
      }
    }
    const size_t left = Build(train, left_index, depth + 1);
    const size_t right = Build(train, right_index, depth + 1);
    nodes_[node_id].leaf = false;
    nodes_[node_id].feature = best_feature;
    nodes_[node_id].threshold = best_threshold;
    nodes_[node_id].left = left;
    nodes_[node_id].right = right;
    return node_id;
  }

  int max_depth_;
  size_t min_leaf_;
  std::vector<TreeNode> nodes_;
  std::vector<size_t> allowed_features_;
};

// ---------------------------------------------------------------------------
// Random forest (bagged trees with feature subsampling).
// ---------------------------------------------------------------------------
class RandomForest : public BinaryClassifier {
 public:
  explicit RandomForest(size_t num_trees = 8) : num_trees_(num_trees) {}

  void Fit(const LabeledData& train, Rng* rng) override {
    trees_.clear();
    if (train.x.empty()) return;
    const size_t n = train.x.size();
    const size_t d = train.x[0].size();
    const size_t feat_count =
        std::max<size_t>(1, static_cast<size_t>(std::sqrt(double(d))) + 1);
    for (size_t t = 0; t < num_trees_; ++t) {
      std::vector<size_t> bootstrap(n);
      for (size_t i = 0; i < n; ++i) {
        bootstrap[i] =
            static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
      }
      std::vector<size_t> all_features(d);
      for (size_t f = 0; f < d; ++f) all_features[f] = f;
      rng->Shuffle(&all_features);
      all_features.resize(feat_count);
      trees_.emplace_back(6, 4);
      trees_.back().FitSubset(train, bootstrap, all_features);
    }
  }

  int Predict(const std::vector<double>& x) const override {
    int votes = 0;
    for (const DecisionTree& tree : trees_) votes += tree.Predict(x);
    return votes * 2 >= static_cast<int>(trees_.size()) ? 1 : 0;
  }

  std::string name() const override { return "RandomForest"; }

 private:
  size_t num_trees_;
  std::vector<DecisionTree> trees_;
};

// ---------------------------------------------------------------------------
// AdaBoost over decision stumps.
// ---------------------------------------------------------------------------
class AdaBoostStumps : public BinaryClassifier {
 public:
  explicit AdaBoostStumps(int rounds = 20) : rounds_(rounds) {}

  void Fit(const LabeledData& train, Rng* rng) override {
    (void)rng;
    stumps_.clear();
    if (train.x.empty()) return;
    const size_t n = train.x.size();
    const size_t d = train.x[0].size();
    std::vector<double> w(n, 1.0 / n);
    for (int round = 0; round < rounds_; ++round) {
      Stump best;
      double best_err = 0.5;
      for (size_t f = 0; f < d; ++f) {
        std::vector<double> values;
        for (size_t i = 0; i < n; ++i) values.push_back(train.x[i][f]);
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()), values.end());
        const size_t steps = std::min<size_t>(8, values.size());
        for (size_t s = 0; s < steps; ++s) {
          const double threshold = values[s * (values.size() - 1) /
                                          std::max<size_t>(1, steps - 1)];
          for (int polarity = 0; polarity < 2; ++polarity) {
            double err = 0.0;
            for (size_t i = 0; i < n; ++i) {
              const int pred = StumpPredict(train.x[i][f], threshold, polarity);
              if (pred != train.y[i]) err += w[i];
            }
            if (err < best_err) {
              best_err = err;
              best.feature = f;
              best.threshold = threshold;
              best.polarity = polarity;
            }
          }
        }
      }
      if (best_err >= 0.5 - 1e-9) break;
      best.alpha = 0.5 * std::log((1.0 - best_err) / std::max(1e-9, best_err));
      double norm = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const int pred =
            StumpPredict(train.x[i][best.feature], best.threshold, best.polarity);
        const int y_signed = train.y[i] == 1 ? 1 : -1;
        const int p_signed = pred == 1 ? 1 : -1;
        w[i] *= std::exp(-best.alpha * y_signed * p_signed);
        norm += w[i];
      }
      if (norm <= 0) break;
      for (double& wi : w) wi /= norm;
      stumps_.push_back(best);
    }
  }

  int Predict(const std::vector<double>& x) const override {
    double score = 0.0;
    for (const Stump& s : stumps_) {
      const int pred = StumpPredict(x[s.feature], s.threshold, s.polarity);
      score += s.alpha * (pred == 1 ? 1.0 : -1.0);
    }
    return score >= 0.0 ? 1 : 0;
  }

  std::string name() const override { return "AdaBoost"; }

 private:
  struct Stump {
    size_t feature = 0;
    double threshold = 0.0;
    int polarity = 0;
    double alpha = 0.0;
  };

  static int StumpPredict(double v, double threshold, int polarity) {
    const bool above = v > threshold;
    return (polarity == 0) == above ? 1 : 0;
  }

  int rounds_;
  std::vector<Stump> stumps_;
};

// ---------------------------------------------------------------------------
// k-nearest neighbors (train subsampled for tractability).
// ---------------------------------------------------------------------------
class Knn : public BinaryClassifier {
 public:
  explicit Knn(size_t k = 5, size_t max_train = 400) : k_(k), max_train_(max_train) {}

  void Fit(const LabeledData& train, Rng* rng) override {
    data_.x.clear();
    data_.y.clear();
    if (train.x.empty()) return;
    std::vector<size_t> index(train.x.size());
    for (size_t i = 0; i < index.size(); ++i) index[i] = i;
    if (index.size() > max_train_) {
      rng->Shuffle(&index);
      index.resize(max_train_);
    }
    for (size_t i : index) {
      data_.x.push_back(train.x[i]);
      data_.y.push_back(train.y[i]);
    }
  }

  int Predict(const std::vector<double>& x) const override {
    if (data_.x.empty()) return 0;
    std::vector<std::pair<double, int>> dist;
    dist.reserve(data_.x.size());
    for (size_t i = 0; i < data_.x.size(); ++i) {
      double d2 = 0.0;
      for (size_t f = 0; f < x.size() && f < data_.x[i].size(); ++f) {
        const double diff = x[f] - data_.x[i][f];
        d2 += diff * diff;
      }
      dist.emplace_back(d2, data_.y[i]);
    }
    const size_t k = std::min(k_, dist.size());
    std::partial_sort(dist.begin(), dist.begin() + k, dist.end());
    int votes = 0;
    for (size_t i = 0; i < k; ++i) votes += dist[i].second;
    return votes * 2 >= static_cast<int>(k) ? 1 : 0;
  }

  std::string name() const override { return "kNN"; }

 private:
  size_t k_;
  size_t max_train_;
  LabeledData data_;
};

// ---------------------------------------------------------------------------
// One-hidden-layer MLP trained with plain SGD.
// ---------------------------------------------------------------------------
class Mlp : public BinaryClassifier {
 public:
  explicit Mlp(size_t hidden = 16) : hidden_(hidden) {}

  void Fit(const LabeledData& train, Rng* rng) override {
    if (train.x.empty()) return;
    const size_t d = train.x[0].size();
    w1_.assign(d * hidden_, 0.0);
    b1_.assign(hidden_, 0.0);
    w2_.assign(hidden_, 0.0);
    b2_ = 0.0;
    const double init = 1.0 / std::sqrt(static_cast<double>(d + 1));
    for (double& w : w1_) w = rng->Gaussian(0.0, init);
    for (double& w : w2_) w = rng->Gaussian(0.0, 0.25);
    const double lr = 0.05;
    std::vector<double> h(hidden_), grad_h(hidden_);
    for (int epoch = 0; epoch < 20; ++epoch) {
      for (size_t i = 0; i < train.x.size(); ++i) {
        // Forward.
        for (size_t j = 0; j < hidden_; ++j) {
          double z = b1_[j];
          for (size_t f = 0; f < d; ++f) z += w1_[f * hidden_ + j] * train.x[i][f];
          h[j] = std::max(0.0, z);
        }
        double z2 = b2_;
        for (size_t j = 0; j < hidden_; ++j) z2 += w2_[j] * h[j];
        const double err = Sigmoid(z2) - train.y[i];
        // Backward.
        for (size_t j = 0; j < hidden_; ++j) {
          grad_h[j] = h[j] > 0.0 ? err * w2_[j] : 0.0;
          w2_[j] -= lr * err * h[j];
        }
        b2_ -= lr * err;
        for (size_t j = 0; j < hidden_; ++j) {
          if (grad_h[j] == 0.0) continue;
          for (size_t f = 0; f < d; ++f) {
            w1_[f * hidden_ + j] -= lr * grad_h[j] * train.x[i][f];
          }
          b1_[j] -= lr * grad_h[j];
        }
      }
    }
  }

  int Predict(const std::vector<double>& x) const override {
    if (w2_.empty()) return 0;
    double z2 = b2_;
    for (size_t j = 0; j < hidden_; ++j) {
      double z = b1_[j];
      const size_t d = w1_.size() / hidden_;
      for (size_t f = 0; f < d && f < x.size(); ++f) {
        z += w1_[f * hidden_ + j] * x[f];
      }
      z2 += w2_[j] * std::max(0.0, z);
    }
    return z2 > 0.0 ? 1 : 0;
  }

  std::string name() const override { return "MLP"; }

 private:
  size_t hidden_;
  std::vector<double> w1_, b1_, w2_;
  double b2_ = 0.0;
};

}  // namespace

std::vector<std::unique_ptr<BinaryClassifier>> MakeClassifierBasket() {
  std::vector<std::unique_ptr<BinaryClassifier>> basket;
  basket.push_back(std::make_unique<LogisticRegression>());
  basket.push_back(std::make_unique<GaussianNaiveBayes>());
  basket.push_back(std::make_unique<DecisionTree>());
  basket.push_back(std::make_unique<RandomForest>());
  basket.push_back(std::make_unique<AdaBoostStumps>());
  basket.push_back(std::make_unique<Knn>());
  basket.push_back(std::make_unique<Mlp>());
  return basket;
}

ClassificationQuality Score(const BinaryClassifier& model,
                            const LabeledData& test) {
  size_t correct = 0, tp = 0, fp = 0, fn = 0;
  for (size_t i = 0; i < test.x.size(); ++i) {
    const int pred = model.Predict(test.x[i]);
    if (pred == test.y[i]) ++correct;
    if (pred == 1 && test.y[i] == 1) ++tp;
    if (pred == 1 && test.y[i] == 0) ++fp;
    if (pred == 0 && test.y[i] == 1) ++fn;
  }
  ClassificationQuality q;
  q.accuracy = test.x.empty() ? 0.0 : static_cast<double>(correct) / test.x.size();
  const double precision = tp + fp == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  const double recall = tp + fn == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  q.f1 = precision + recall == 0.0 ? 0.0
                                   : 2.0 * precision * recall / (precision + recall);
  return q;
}

LabelRule MakeLabelRule(const Table& truth, size_t attr) {
  LabelRule rule;
  rule.attr = attr;
  const Attribute& a = truth.schema().attribute(attr);
  rule.categorical = a.is_categorical();
  if (rule.categorical) {
    std::map<int32_t, size_t> counts;
    for (size_t r = 0; r < truth.num_rows(); ++r) {
      ++counts[truth.at(r, attr).category()];
    }
    size_t best_count = 0;
    for (const auto& [cat, count] : counts) {
      if (count > best_count) {
        best_count = count;
        rule.majority_category = cat;
      }
    }
  } else {
    std::vector<double> values;
    values.reserve(truth.num_rows());
    for (size_t r = 0; r < truth.num_rows(); ++r) {
      values.push_back(truth.at(r, attr).numeric());
    }
    std::sort(values.begin(), values.end());
    rule.threshold = values.empty() ? 0.0 : values[values.size() / 2];
  }
  return rule;
}

LabeledData Encode(const Table& table, size_t label_attr,
                   const LabelRule& rule) {
  const Schema& schema = table.schema();
  LabeledData data;
  data.x.reserve(table.num_rows());
  data.y.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<double> x;
    for (size_t a = 0; a < schema.size(); ++a) {
      if (a == label_attr) continue;
      const Attribute& attr = schema.attribute(a);
      const Value& v = table.at(r, a);
      if (attr.is_numeric()) {
        const double span = attr.max_value() - attr.min_value();
        x.push_back(span > 0 ? (v.numeric() - attr.min_value()) / span : 0.0);
      } else if (attr.categories().size() <= kOneHotLimit) {
        for (size_t c = 0; c < attr.categories().size(); ++c) {
          x.push_back(v.category() == static_cast<int32_t>(c) ? 1.0 : 0.0);
        }
      } else {
        x.push_back(static_cast<double>(v.category()) /
                    static_cast<double>(attr.categories().size()));
      }
    }
    data.x.push_back(std::move(x));
    data.y.push_back(rule.LabelOf(table.at(r, label_attr)));
  }
  return data;
}

std::vector<ClassificationQuality> EvaluateModelTraining(const Table& synthetic,
                                                         const Table& truth,
                                                         Rng* rng) {
  const Schema& schema = truth.schema();
  std::vector<ClassificationQuality> out;
  out.reserve(schema.size());
  const size_t train_rows = synthetic.num_rows() * 7 / 10;
  const size_t test_start = truth.num_rows() * 7 / 10;

  for (size_t attr = 0; attr < schema.size(); ++attr) {
    const LabelRule rule = MakeLabelRule(truth, attr);
    LabeledData train = Encode(synthetic.Head(train_rows), attr, rule);
    // The paper tests on the held-out 30% of the true instance.
    Table truth_test(truth.schema());
    for (size_t r = test_start; r < truth.num_rows(); ++r) {
      truth_test.AppendRowUnchecked(truth.row(r));
    }
    LabeledData test = Encode(truth_test, attr, rule);

    ClassificationQuality mean;
    auto basket = MakeClassifierBasket();
    for (auto& model : basket) {
      model->Fit(train, rng);
      const ClassificationQuality q = Score(*model, test);
      mean.accuracy += q.accuracy;
      mean.f1 += q.f1;
    }
    mean.accuracy /= basket.size();
    mean.f1 /= basket.size();
    out.push_back(mean);
  }
  return out;
}

ClassificationQuality MeanQuality(
    const std::vector<ClassificationQuality>& values) {
  ClassificationQuality mean;
  if (values.empty()) return mean;
  for (const ClassificationQuality& q : values) {
    mean.accuracy += q.accuracy;
    mean.f1 += q.f1;
  }
  mean.accuracy /= values.size();
  mean.f1 /= values.size();
  return mean;
}

}  // namespace kamino
