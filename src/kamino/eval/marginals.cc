#include "kamino/eval/marginals.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "kamino/common/logging.h"
#include "kamino/data/quantizer.h"

namespace kamino {
namespace {

/// Flattens one row's values over `attrs` into a joint cell id.
size_t CellOf(const Table& table, size_t row, const std::vector<size_t>& attrs,
              const std::vector<int>& cardinalities,
              const std::vector<std::optional<Quantizer>>& quantizers) {
  size_t cell = 0;
  for (size_t i = 0; i < attrs.size(); ++i) {
    const Value& v = table.at(row, attrs[i]);
    int bucket;
    if (quantizers[i].has_value()) {
      bucket = quantizers[i]->BinOf(v.numeric());
    } else {
      bucket = v.category();
    }
    cell = cell * static_cast<size_t>(cardinalities[i]) +
           static_cast<size_t>(bucket);
  }
  return cell;
}

std::unordered_map<size_t, double> Histogram(
    const Table& table, const std::vector<size_t>& attrs,
    const std::vector<int>& cardinalities,
    const std::vector<std::optional<Quantizer>>& quantizers) {
  std::unordered_map<size_t, double> hist;
  const double weight =
      table.num_rows() == 0 ? 0.0 : 1.0 / static_cast<double>(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    hist[CellOf(table, r, attrs, cardinalities, quantizers)] += weight;
  }
  return hist;
}

}  // namespace

double MarginalDistance(const Table& synthetic, const Table& truth,
                        const std::vector<size_t>& attrs, int numeric_bins) {
  const Schema& schema = truth.schema();
  std::vector<int> cardinalities;
  std::vector<std::optional<Quantizer>> quantizers;
  for (size_t a : attrs) {
    const Attribute& attr = schema.attribute(a);
    if (attr.is_numeric()) {
      auto q = Quantizer::Make(attr, numeric_bins);
      KAMINO_CHECK(q.ok()) << q.status().ToString();
      quantizers.push_back(q.value());
      cardinalities.push_back(numeric_bins);
    } else {
      quantizers.push_back(std::nullopt);
      cardinalities.push_back(static_cast<int>(attr.categories().size()));
    }
  }
  auto h_syn = Histogram(synthetic, attrs, cardinalities, quantizers);
  auto h_true = Histogram(truth, attrs, cardinalities, quantizers);
  double max_diff = 0.0;
  for (const auto& [cell, p] : h_true) {
    auto it = h_syn.find(cell);
    const double q = it == h_syn.end() ? 0.0 : it->second;
    max_diff = std::max(max_diff, std::abs(p - q));
  }
  for (const auto& [cell, q] : h_syn) {
    if (h_true.find(cell) == h_true.end()) {
      max_diff = std::max(max_diff, q);
    }
  }
  return max_diff;
}

std::vector<double> OneWayMarginalDistances(const Table& synthetic,
                                            const Table& truth,
                                            int numeric_bins) {
  std::vector<double> out;
  for (size_t a = 0; a < truth.schema().size(); ++a) {
    out.push_back(MarginalDistance(synthetic, truth, {a}, numeric_bins));
  }
  return out;
}

std::vector<double> TwoWayMarginalDistances(const Table& synthetic,
                                            const Table& truth,
                                            int numeric_bins, size_t num_pairs,
                                            Rng* rng) {
  const size_t k = truth.schema().size();
  std::vector<std::pair<size_t, size_t>> pairs;
  for (size_t a = 0; a < k; ++a) {
    for (size_t b = a + 1; b < k; ++b) pairs.emplace_back(a, b);
  }
  if (pairs.size() > num_pairs) {
    rng->Shuffle(&pairs);
    pairs.resize(num_pairs);
  }
  std::vector<double> out;
  for (const auto& [a, b] : pairs) {
    out.push_back(MarginalDistance(synthetic, truth, {a, b}, numeric_bins));
  }
  return out;
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (double v : values) s += v;
  return s / static_cast<double>(values.size());
}

double MaxOf(const std::vector<double>& values) {
  double m = 0.0;
  for (double v : values) m = std::max(m, v);
  return m;
}

}  // namespace kamino
