#ifndef KAMINO_EVAL_REPAIR_H_
#define KAMINO_EVAL_REPAIR_H_

#include <vector>

#include "kamino/data/table.h"
#include "kamino/dc/constraint.h"

namespace kamino {

/// Post-hoc constraint repair, standing in for the HoloClean cleaning step
/// of Figure 1 ("cleaned" series).
///
/// For FD-shaped DCs X -> Y the repair sets every group's Y to the group's
/// majority value (minimal-change repair). For order-shaped binary DCs
/// (t1.X > t2.X & t1.Y < t2.Y) it reassigns the Y values so that their
/// ranking matches the X ranking, preserving the Y marginal but enforcing
/// co-monotonicity. Other DC shapes are left untouched.
///
/// The point of Figure 1 is precisely that this restores consistency while
/// damaging downstream utility; this function reproduces that mechanism.
Table RepairViolations(const Table& table,
                       const std::vector<WeightedConstraint>& constraints);

}  // namespace kamino

#endif  // KAMINO_EVAL_REPAIR_H_
