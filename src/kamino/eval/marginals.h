#ifndef KAMINO_EVAL_MARGINALS_H_
#define KAMINO_EVAL_MARGINALS_H_

#include <cstddef>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/data/table.h"

namespace kamino {

/// Metric III of the paper: for the attribute set `attrs`, builds the
/// alpha-way marginal (joint histogram, numeric attributes quantized into
/// `numeric_bins` equal-width bins over their public domain) on both
/// tables and returns the paper's distance
///   max_a | h(synthetic)[a] - h(truth)[a] |
/// over all cells a of the marginal.
double MarginalDistance(const Table& synthetic, const Table& truth,
                        const std::vector<size_t>& attrs, int numeric_bins);

/// Distances of every 1-way marginal, one per attribute.
std::vector<double> OneWayMarginalDistances(const Table& synthetic,
                                            const Table& truth,
                                            int numeric_bins);

/// Distances of `num_pairs` 2-way marginals over randomly chosen attribute
/// pairs (all pairs when the schema has at most `num_pairs` pairs).
std::vector<double> TwoWayMarginalDistances(const Table& synthetic,
                                            const Table& truth,
                                            int numeric_bins, size_t num_pairs,
                                            Rng* rng);

/// Mean of a distance vector (the headline number quoted in section 7).
double MeanOf(const std::vector<double>& values);

/// Max of a distance vector.
double MaxOf(const std::vector<double>& values);

}  // namespace kamino

#endif  // KAMINO_EVAL_MARGINALS_H_
