#ifndef KAMINO_EVAL_CLASSIFIERS_H_
#define KAMINO_EVAL_CLASSIFIERS_H_

#include <memory>
#include <string>
#include <vector>

#include "kamino/common/rng.h"
#include "kamino/data/table.h"

namespace kamino {

/// Dense feature matrix + binary labels.
struct LabeledData {
  std::vector<std::vector<double>> x;
  std::vector<int> y;  // 0/1
};

/// Interface of the basket classifiers (Metric II). Mirrors the paper's
/// use of a fixed set of off-the-shelf models averaged per attribute.
class BinaryClassifier {
 public:
  virtual ~BinaryClassifier() = default;
  virtual void Fit(const LabeledData& train, Rng* rng) = 0;
  virtual int Predict(const std::vector<double>& x) const = 0;
  virtual std::string name() const = 0;
};

/// The model basket: logistic regression, Gaussian naive Bayes, decision
/// tree, random forest, AdaBoost (stumps), k-nearest-neighbors and a small
/// MLP - the offline stand-in for the paper's nine sklearn models.
std::vector<std::unique_ptr<BinaryClassifier>> MakeClassifierBasket();

/// Accuracy and (positive-class) F1 of predictions against labels.
struct ClassificationQuality {
  double accuracy = 0.0;
  double f1 = 0.0;
};

ClassificationQuality Score(const BinaryClassifier& model,
                            const LabeledData& test);

/// How the label attribute is binarized. Derived from the *true* instance
/// so that the same task definition applies to every synthesizer:
/// categorical attributes test "is the majority category", numeric ones
/// "is above the true median".
struct LabelRule {
  size_t attr = 0;
  bool categorical = false;
  int32_t majority_category = 0;
  double threshold = 0.0;

  int LabelOf(const Value& v) const {
    if (categorical) return v.category() == majority_category ? 1 : 0;
    return v.numeric() > threshold ? 1 : 0;
  }
};

/// Builds the label rule for attribute `attr` from the true instance.
LabelRule MakeLabelRule(const Table& truth, size_t attr);

/// Encodes `table` into features (all attributes except `label_attr`;
/// categorical one-hot up to 12 categories, index-scaled beyond; numeric
/// standardized by public domain statistics) and labels per `rule`.
LabeledData Encode(const Table& table, size_t label_attr,
                   const LabelRule& rule);

/// Metric II end-to-end: for every attribute, trains the basket on 70% of
/// `synthetic` and tests on 30% of `truth` (the paper's split), averaging
/// accuracy and F1 over the basket. Returns one entry per attribute.
std::vector<ClassificationQuality> EvaluateModelTraining(const Table& synthetic,
                                                         const Table& truth,
                                                         Rng* rng);

/// Mean accuracy and F1 over a per-attribute quality vector.
ClassificationQuality MeanQuality(
    const std::vector<ClassificationQuality>& values);

}  // namespace kamino

#endif  // KAMINO_EVAL_CLASSIFIERS_H_
