#include "kamino/eval/repair.h"

#include <algorithm>
#include <map>
#include <numeric>

namespace kamino {
namespace {

/// Majority-vote repair of an FD X -> Y.
void RepairFd(const std::vector<size_t>& lhs, size_t rhs, Table* table) {
  // Group rows by LHS values.
  std::map<std::vector<double>, std::vector<size_t>> groups;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    std::vector<double> key;
    key.reserve(lhs.size());
    for (size_t a : lhs) key.push_back(table->at(r, a).OrderKey());
    groups[std::move(key)].push_back(r);
  }
  for (const auto& [key, rows] : groups) {
    // Majority RHS value within the group.
    std::map<double, std::pair<size_t, Value>> counts;
    for (size_t r : rows) {
      const Value& v = table->at(r, rhs);
      auto& slot = counts[v.OrderKey()];
      ++slot.first;
      slot.second = v;
    }
    size_t best_count = 0;
    Value majority;
    for (const auto& [ok, slot] : counts) {
      if (slot.first > best_count) {
        best_count = slot.first;
        majority = slot.second;
      }
    }
    for (size_t r : rows) table->set(r, rhs, majority);
  }
}

/// Rank-matching repair for a co-monotonicity DC: reassigns Y values so
/// that sorting by X also sorts Y.
void RepairOrder(size_t x_attr, size_t y_attr, Table* table) {
  const size_t n = table->num_rows();
  std::vector<size_t> by_x(n);
  std::iota(by_x.begin(), by_x.end(), 0);
  std::stable_sort(by_x.begin(), by_x.end(), [&](size_t a, size_t b) {
    return table->at(a, x_attr).OrderKey() < table->at(b, x_attr).OrderKey();
  });
  std::vector<Value> y_values;
  y_values.reserve(n);
  for (size_t r = 0; r < n; ++r) y_values.push_back(table->at(r, y_attr));
  std::stable_sort(y_values.begin(), y_values.end(),
                   [](const Value& a, const Value& b) {
                     return a.OrderKey() < b.OrderKey();
                   });
  for (size_t rank = 0; rank < n; ++rank) {
    table->set(by_x[rank], y_attr, y_values[rank]);
  }
}

}  // namespace

Table RepairViolations(const Table& table,
                       const std::vector<WeightedConstraint>& constraints) {
  Table repaired = table;
  for (const WeightedConstraint& wc : constraints) {
    std::vector<size_t> lhs;
    size_t rhs = 0;
    size_t x_attr = 0, y_attr = 0;
    if (wc.dc.AsFd(&lhs, &rhs)) {
      RepairFd(lhs, rhs, &repaired);
    } else if (wc.dc.AsOrderPair(&x_attr, &y_attr)) {
      RepairOrder(x_attr, y_attr, &repaired);
    }
  }
  return repaired;
}

}  // namespace kamino
