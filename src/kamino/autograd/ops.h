#ifndef KAMINO_AUTOGRAD_OPS_H_
#define KAMINO_AUTOGRAD_OPS_H_

#include <functional>
#include <memory>
#include <vector>

#include "kamino/autograd/tensor.h"

namespace kamino {

/// A node in the dynamically built computation graph.
///
/// Reverse-mode autodiff with define-by-run semantics, like a miniature
/// PyTorch: each op allocates a node holding its forward value, links to
/// its parents, and captures a closure that routes the node's gradient
/// into the parents' gradients. `Backward` topologically sorts from the
/// root and runs the closures.
struct Node {
  Tensor value;
  Tensor grad;
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  /// Accumulates into each parent's `grad` given this node's `grad`.
  /// Null for leaves.
  std::function<void(Node&)> backward;
};

/// Shared handle to a graph node. Graphs are per-example and short-lived;
/// shared ownership keeps the API simple and the graphs are tiny.
using Var = std::shared_ptr<Node>;

/// Leaf that participates in differentiation (parameters).
Var MakeLeaf(const Tensor& value);

/// Leaf that does not require a gradient (inputs, constants).
Var MakeConstant(const Tensor& value);

/// Elementwise a + b (same shape).
Var Add(const Var& a, const Var& b);

/// Elementwise a - b (same shape).
Var Sub(const Var& a, const Var& b);

/// Elementwise a * b (same shape, Hadamard).
Var Mul(const Var& a, const Var& b);

/// a * scalar.
Var Scale(const Var& a, double scalar);

/// Matrix product (a.rows x a.cols) x (a.cols x b.cols).
Var MatMul(const Var& a, const Var& b);

/// Transpose.
Var Transpose(const Var& a);

/// Elementwise max(0, x).
Var Relu(const Var& a);

/// Elementwise tanh(x).
Var Tanh(const Var& a);

/// Row-wise softmax (used for attention weights).
Var Softmax(const Var& a);

/// Stacks m row vectors (all 1 x d) into an m x d matrix.
Var ConcatRows(const std::vector<Var>& rows);

/// Selects row `index` of a matrix as a 1 x cols vector (embedding lookup).
Var SelectRow(const Var& a, size_t index);

/// Sum of all elements, as a 1x1 scalar.
Var Sum(const Var& a);

/// Mean of all elements, as a 1x1 scalar.
Var Mean(const Var& a);

/// Fused softmax-cross-entropy: `logits` is 1 x V, `target` indexes the
/// true class. Returns the scalar loss logsumexp(logits) - logits[target].
Var CrossEntropyWithLogits(const Var& logits, size_t target);

/// Fused Gaussian negative log-likelihood head: `mean_and_raw_std` is a
/// 1 x 2 vector (mu, s) where sigma = softplus(s) + 1e-3. Returns the
/// scalar 0.5*((y-mu)/sigma)^2 + log(sigma).
Var GaussianNll(const Var& mean_and_raw_std, double target);

/// Runs reverse-mode differentiation from the scalar (1x1) `root`,
/// accumulating into the `grad` of every reachable node that requires a
/// gradient. Roots with more than one element get a gradient of all ones.
void Backward(const Var& root);

/// Numerically checks d(loss)/d(leaf) via central differences, where
/// `loss_fn` rebuilds the graph from scratch using the current contents of
/// `*leaf_value`. Returns the max absolute difference against
/// `analytic_grad`. Test helper.
double MaxGradError(
    Tensor* leaf_value, const Tensor& analytic_grad,
    const std::function<double()>& loss_fn, double epsilon = 1e-5);

}  // namespace kamino

#endif  // KAMINO_AUTOGRAD_OPS_H_
