#include "kamino/autograd/ops.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace kamino {
namespace {

Var NewNode(Tensor value, std::vector<Var> parents,
            std::function<void(Node&)> backward) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  node->requires_grad = false;
  for (const Var& p : node->parents) {
    if (p->requires_grad) node->requires_grad = true;
  }
  if (node->requires_grad) node->backward = std::move(backward);
  node->grad = Tensor(node->value.rows(), node->value.cols());
  return node;
}

double Softplus(double x) {
  // Numerically stable log(1 + e^x).
  return x > 30.0 ? x : std::log1p(std::exp(x));
}

double Sigmoid(double x) { return 1.0 / (1.0 + std::exp(-x)); }

constexpr double kSigmaFloor = 1e-3;

}  // namespace

Var MakeLeaf(const Tensor& value) {
  auto node = std::make_shared<Node>();
  node->value = value;
  node->grad = Tensor(value.rows(), value.cols());
  node->requires_grad = true;
  return node;
}

Var MakeConstant(const Tensor& value) {
  auto node = std::make_shared<Node>();
  node->value = value;
  node->grad = Tensor(value.rows(), value.cols());
  node->requires_grad = false;
  return node;
}

Var Add(const Var& a, const Var& b) {
  KAMINO_CHECK(a->value.SameShape(b->value)) << "Add shape mismatch";
  Tensor out = a->value;
  out.Add(b->value);
  return NewNode(std::move(out), {a, b}, [](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->grad.Add(n.grad);
    if (n.parents[1]->requires_grad) n.parents[1]->grad.Add(n.grad);
  });
}

Var Sub(const Var& a, const Var& b) {
  KAMINO_CHECK(a->value.SameShape(b->value)) << "Sub shape mismatch";
  Tensor out = a->value;
  out.Axpy(-1.0, b->value);
  return NewNode(std::move(out), {a, b}, [](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->grad.Add(n.grad);
    if (n.parents[1]->requires_grad) n.parents[1]->grad.Axpy(-1.0, n.grad);
  });
}

Var Mul(const Var& a, const Var& b) {
  KAMINO_CHECK(a->value.SameShape(b->value)) << "Mul shape mismatch";
  Tensor out = a->value;
  for (size_t i = 0; i < out.size(); ++i) out[i] *= b->value[i];
  return NewNode(std::move(out), {a, b}, [](Node& n) {
    Node& a = *n.parents[0];
    Node& b = *n.parents[1];
    if (a.requires_grad) {
      for (size_t i = 0; i < n.grad.size(); ++i) {
        a.grad[i] += n.grad[i] * b.value[i];
      }
    }
    if (b.requires_grad) {
      for (size_t i = 0; i < n.grad.size(); ++i) {
        b.grad[i] += n.grad[i] * a.value[i];
      }
    }
  });
}

Var Scale(const Var& a, double scalar) {
  Tensor out = a->value;
  out.Scale(scalar);
  return NewNode(std::move(out), {a}, [scalar](Node& n) {
    if (n.parents[0]->requires_grad) n.parents[0]->grad.Axpy(scalar, n.grad);
  });
}

Var MatMul(const Var& a, const Var& b) {
  KAMINO_CHECK(a->value.cols() == b->value.rows()) << "MatMul shape mismatch";
  const size_t m = a->value.rows();
  const size_t k = a->value.cols();
  const size_t p = b->value.cols();
  Tensor out(m, p);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) {
      const double aij = a->value.at(i, j);
      if (aij == 0.0) continue;
      for (size_t l = 0; l < p; ++l) {
        out.at(i, l) += aij * b->value.at(j, l);
      }
    }
  }
  return NewNode(std::move(out), {a, b}, [m, k, p](Node& n) {
    Node& a = *n.parents[0];
    Node& b = *n.parents[1];
    if (a.requires_grad) {
      // dA = dOut * B^T
      for (size_t i = 0; i < m; ++i) {
        for (size_t j = 0; j < k; ++j) {
          double s = 0.0;
          for (size_t l = 0; l < p; ++l) {
            s += n.grad.at(i, l) * b.value.at(j, l);
          }
          a.grad.at(i, j) += s;
        }
      }
    }
    if (b.requires_grad) {
      // dB = A^T * dOut
      for (size_t j = 0; j < k; ++j) {
        for (size_t l = 0; l < p; ++l) {
          double s = 0.0;
          for (size_t i = 0; i < m; ++i) {
            s += a.value.at(i, j) * n.grad.at(i, l);
          }
          b.grad.at(j, l) += s;
        }
      }
    }
  });
}

Var Transpose(const Var& a) {
  const size_t m = a->value.rows();
  const size_t k = a->value.cols();
  Tensor out(k, m);
  for (size_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < k; ++j) out.at(j, i) = a->value.at(i, j);
  }
  return NewNode(std::move(out), {a}, [m, k](Node& n) {
    if (!n.parents[0]->requires_grad) return;
    for (size_t i = 0; i < m; ++i) {
      for (size_t j = 0; j < k; ++j) {
        n.parents[0]->grad.at(i, j) += n.grad.at(j, i);
      }
    }
  });
}

Var Relu(const Var& a) {
  Tensor out = a->value;
  for (double& v : out.data()) v = std::max(0.0, v);
  return NewNode(std::move(out), {a}, [](Node& n) {
    Node& a = *n.parents[0];
    if (!a.requires_grad) return;
    for (size_t i = 0; i < n.grad.size(); ++i) {
      if (a.value[i] > 0.0) a.grad[i] += n.grad[i];
    }
  });
}

Var Tanh(const Var& a) {
  Tensor out = a->value;
  for (double& v : out.data()) v = std::tanh(v);
  return NewNode(std::move(out), {a}, [](Node& n) {
    Node& a = *n.parents[0];
    if (!a.requires_grad) return;
    for (size_t i = 0; i < n.grad.size(); ++i) {
      const double y = n.value[i];
      a.grad[i] += n.grad[i] * (1.0 - y * y);
    }
  });
}

Var Softmax(const Var& a) {
  Tensor out = a->value;
  const size_t rows = out.rows();
  const size_t cols = out.cols();
  for (size_t r = 0; r < rows; ++r) {
    double mx = out.at(r, 0);
    for (size_t c = 1; c < cols; ++c) mx = std::max(mx, out.at(r, c));
    double sum = 0.0;
    for (size_t c = 0; c < cols; ++c) {
      out.at(r, c) = std::exp(out.at(r, c) - mx);
      sum += out.at(r, c);
    }
    for (size_t c = 0; c < cols; ++c) out.at(r, c) /= sum;
  }
  return NewNode(std::move(out), {a}, [rows, cols](Node& n) {
    Node& a = *n.parents[0];
    if (!a.requires_grad) return;
    // dL/dx_j = y_j * (dL/dy_j - sum_c dL/dy_c * y_c), per row.
    for (size_t r = 0; r < rows; ++r) {
      double dot = 0.0;
      for (size_t c = 0; c < cols; ++c) {
        dot += n.grad.at(r, c) * n.value.at(r, c);
      }
      for (size_t c = 0; c < cols; ++c) {
        a.grad.at(r, c) += n.value.at(r, c) * (n.grad.at(r, c) - dot);
      }
    }
  });
}

Var ConcatRows(const std::vector<Var>& rows) {
  KAMINO_CHECK(!rows.empty()) << "ConcatRows on empty list";
  const size_t d = rows[0]->value.cols();
  Tensor out(rows.size(), d);
  std::vector<Var> parents;
  parents.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    KAMINO_CHECK(rows[r]->value.rows() == 1 && rows[r]->value.cols() == d)
        << "ConcatRows expects 1 x d rows";
    for (size_t c = 0; c < d; ++c) out.at(r, c) = rows[r]->value.at(0, c);
    parents.push_back(rows[r]);
  }
  return NewNode(std::move(out), std::move(parents), [d](Node& n) {
    for (size_t r = 0; r < n.parents.size(); ++r) {
      Node& p = *n.parents[r];
      if (!p.requires_grad) continue;
      for (size_t c = 0; c < d; ++c) p.grad.at(0, c) += n.grad.at(r, c);
    }
  });
}

Var SelectRow(const Var& a, size_t index) {
  KAMINO_CHECK(index < a->value.rows()) << "SelectRow out of range";
  const size_t d = a->value.cols();
  Tensor out(1, d);
  for (size_t c = 0; c < d; ++c) out.at(0, c) = a->value.at(index, c);
  return NewNode(std::move(out), {a}, [index, d](Node& n) {
    Node& a = *n.parents[0];
    if (!a.requires_grad) return;
    for (size_t c = 0; c < d; ++c) a.grad.at(index, c) += n.grad.at(0, c);
  });
}

Var Sum(const Var& a) {
  double s = 0.0;
  for (double v : a->value.data()) s += v;
  return NewNode(Tensor::Scalar(s), {a}, [](Node& n) {
    Node& a = *n.parents[0];
    if (!a.requires_grad) return;
    const double g = n.grad[0];
    for (size_t i = 0; i < a.grad.size(); ++i) a.grad[i] += g;
  });
}

Var Mean(const Var& a) {
  const double inv = 1.0 / static_cast<double>(a->value.size());
  return Scale(Sum(a), inv);
}

Var CrossEntropyWithLogits(const Var& logits, size_t target) {
  KAMINO_CHECK(logits->value.rows() == 1) << "expects a 1 x V logit row";
  KAMINO_CHECK(target < logits->value.cols()) << "target out of range";
  const size_t v_count = logits->value.cols();
  double mx = logits->value[0];
  for (size_t i = 1; i < v_count; ++i) mx = std::max(mx, logits->value[i]);
  double sum = 0.0;
  for (size_t i = 0; i < v_count; ++i) {
    sum += std::exp(logits->value[i] - mx);
  }
  const double lse = mx + std::log(sum);
  const double loss = lse - logits->value[target];
  return NewNode(Tensor::Scalar(loss), {logits},
                 [target, v_count, mx, sum](Node& n) {
                   Node& l = *n.parents[0];
                   if (!l.requires_grad) return;
                   const double g = n.grad[0];
                   for (size_t i = 0; i < v_count; ++i) {
                     double softmax_i = std::exp(l.value[i] - mx) / sum;
                     double indicator = i == target ? 1.0 : 0.0;
                     l.grad[i] += g * (softmax_i - indicator);
                   }
                 });
}

Var GaussianNll(const Var& mean_and_raw_std, double target) {
  KAMINO_CHECK(mean_and_raw_std->value.rows() == 1 &&
               mean_and_raw_std->value.cols() == 2)
      << "GaussianNll expects a 1 x 2 (mu, s) vector";
  const double mu = mean_and_raw_std->value[0];
  const double s = mean_and_raw_std->value[1];
  const double sigma = Softplus(s) + kSigmaFloor;
  const double z = (target - mu) / sigma;
  const double loss = 0.5 * z * z + std::log(sigma);
  return NewNode(
      Tensor::Scalar(loss), {mean_and_raw_std},
      [mu, s, sigma, target](Node& n) {
        Node& p = *n.parents[0];
        if (!p.requires_grad) return;
        const double g = n.grad[0];
        const double diff = mu - target;
        // dL/dmu = (mu - y) / sigma^2
        p.grad[0] += g * diff / (sigma * sigma);
        // dL/dsigma = -((y-mu)^2)/sigma^3 + 1/sigma; dsigma/ds = sigmoid(s)
        const double dl_dsigma =
            -(diff * diff) / (sigma * sigma * sigma) + 1.0 / sigma;
        p.grad[1] += g * dl_dsigma * Sigmoid(s);
      });
}

void Backward(const Var& root) {
  // Topological order by iterative post-order DFS.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, size_t>> stack;
  stack.emplace_back(root.get(), 0);
  visited.insert(root.get());
  while (!stack.empty()) {
    auto& [node, next_child] = stack.back();
    if (next_child < node->parents.size()) {
      Node* child = node->parents[next_child].get();
      ++next_child;
      if (child->requires_grad && visited.insert(child).second) {
        stack.emplace_back(child, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  // Seed the root gradient with ones.
  for (double& g : root->grad.data()) g = 1.0;
  // order is post-order (children first); reverse for root-first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    if (node->backward) node->backward(*node);
  }
}

double MaxGradError(Tensor* leaf_value, const Tensor& analytic_grad,
                    const std::function<double()>& loss_fn, double epsilon) {
  double max_err = 0.0;
  for (size_t i = 0; i < leaf_value->size(); ++i) {
    const double saved = (*leaf_value)[i];
    (*leaf_value)[i] = saved + epsilon;
    const double plus = loss_fn();
    (*leaf_value)[i] = saved - epsilon;
    const double minus = loss_fn();
    (*leaf_value)[i] = saved;
    const double numeric = (plus - minus) / (2.0 * epsilon);
    max_err = std::max(max_err, std::abs(numeric - analytic_grad[i]));
  }
  return max_err;
}

}  // namespace kamino
