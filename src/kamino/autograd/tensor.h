#ifndef KAMINO_AUTOGRAD_TENSOR_H_
#define KAMINO_AUTOGRAD_TENSOR_H_

#include <cstddef>
#include <vector>

#include "kamino/common/logging.h"
#include "kamino/common/rng.h"

namespace kamino {

/// A dense row-major matrix of doubles.
///
/// This is the numeric workhorse of the NN substrate that stands in for
/// PyTorch tensors. Shapes in this library are tiny (embedding dimension
/// 8-32, domains of a few hundred values), so a simple contiguous buffer
/// with no views or strides is the right level of machinery.
class Tensor {
 public:
  Tensor() : rows_(0), cols_(0) {}
  Tensor(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// 1 x values.size() row vector.
  static Tensor RowVector(std::vector<double> values) {
    Tensor t;
    t.rows_ = 1;
    t.cols_ = values.size();
    t.data_ = std::move(values);
    return t;
  }

  /// 1 x 1 scalar.
  static Tensor Scalar(double v) { return RowVector({v}); }

  /// Gaussian-initialized matrix (for parameter init).
  static Tensor Randn(size_t rows, size_t cols, double stddev, Rng* rng) {
    Tensor t(rows, cols);
    for (double& v : t.data_) v = rng->Gaussian(0.0, stddev);
    return t;
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  size_t size() const { return data_.size(); }
  bool SameShape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  double& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator[](size_t i) { return data_[i]; }
  double operator[](size_t i) const { return data_[i]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Sets every element to zero (grad reset).
  void Zero() { std::fill(data_.begin(), data_.end(), 0.0); }

  /// this += other (same shape).
  void Add(const Tensor& other) {
    KAMINO_CHECK(SameShape(other)) << "Tensor::Add shape mismatch";
    for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  }

  /// this += scale * other (same shape). Used by optimizers.
  void Axpy(double scale, const Tensor& other) {
    KAMINO_CHECK(SameShape(other)) << "Tensor::Axpy shape mismatch";
    for (size_t i = 0; i < data_.size(); ++i) {
      data_[i] += scale * other.data_[i];
    }
  }

  /// Multiplies every element by `scale`.
  void Scale(double scale) {
    for (double& v : data_) v *= scale;
  }

  /// Sum of squared entries (for gradient-norm computations).
  double SquaredL2() const {
    double s = 0.0;
    for (double v : data_) s += v * v;
    return s;
  }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

}  // namespace kamino

#endif  // KAMINO_AUTOGRAD_TENSOR_H_
