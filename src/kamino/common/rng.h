#ifndef KAMINO_COMMON_RNG_H_
#define KAMINO_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "kamino/common/status.h"

namespace kamino {

/// Portable snapshot of a `std::mt19937_64` engine, used by the model
/// artifact to persist the sampling stream across processes. The standard
/// guarantees the iostream text representation round-trips the exact
/// engine state (all 312 words plus the stream position), so a restored
/// engine continues bit-identically.
struct RngState {
  std::string text;
};

/// Captures the full state of `engine`.
RngState SnapshotEngine(const std::mt19937_64& engine);

/// Restores `engine` from a snapshot. Returns InvalidArgument (leaving
/// `engine` untouched) when the snapshot text is not a well-formed
/// mt19937_64 state.
Status RestoreEngine(const RngState& state, std::mt19937_64* engine);

/// Deterministic random number generator used throughout the library.
///
/// Wraps a Mersenne Twister seeded explicitly so that every experiment is
/// reproducible. All randomized components (DP noise, samplers, generators)
/// take an `Rng&` rather than creating their own engines, which keeps the
/// whole pipeline replayable from a single seed.
class Rng {
 public:
  /// Creates a generator with the given seed.
  explicit Rng(uint64_t seed = 0) : engine_(seed) {}

  Rng(const Rng&) = delete;
  Rng& operator=(const Rng&) = delete;

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> d(lo, hi);
    return d(engine_);
  }

  /// Uniform real in [lo, hi).
  double Uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  /// Standard normal sample scaled to the given mean and stddev.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(engine_);
  }

  /// Samples an index in [0, weights.size()) proportionally to `weights`.
  /// Non-positive weights are treated as zero; if all weights are zero the
  /// index is drawn uniformly.
  size_t Discrete(const std::vector<double>& weights);

  /// Returns a fresh seed derived from this generator, for spawning
  /// independent child generators (e.g. one per training shard).
  uint64_t NextSeed() { return engine_(); }

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace kamino

#endif  // KAMINO_COMMON_RNG_H_
