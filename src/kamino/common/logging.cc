#include "kamino/common/logging.h"

#include <cctype>
#include <cstdio>
#include <mutex>

namespace kamino {
namespace internal_logging {
namespace {

class StderrSink : public LogSink {
 public:
  void Write(LogLevel level, const std::string& line) override {
    std::fwrite(line.data(), 1, line.size(), stderr);
    if (level >= LogLevel::kError) std::fflush(stderr);
  }
};

StderrSink& DefaultSink() {
  static StderrSink sink;
  return sink;
}

/// Parses KAMINO_LOG_LEVEL once; unknown values keep the Info default.
LogLevel InitialMinLevel() {
  const char* env = std::getenv("KAMINO_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kInfo;
  std::string value;
  for (const char* p = env; *p; ++p) {
    value.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(*p))));
  }
  if (value == "0" || value == "INFO") return LogLevel::kInfo;
  if (value == "1" || value == "WARNING" || value == "WARN") {
    return LogLevel::kWarning;
  }
  if (value == "2" || value == "ERROR") return LogLevel::kError;
  if (value == "3" || value == "FATAL") return LogLevel::kFatal;
  return LogLevel::kInfo;
}

/// One mutex serializes sink swaps, threshold changes and every Write, so
/// concurrent LogMessage destructors cannot interleave their lines and a
/// sink being uninstalled never races an in-flight Write.
std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

LogSink* g_sink = nullptr;  // nullptr = default stderr sink
LogLevel g_min_level = InitialMinLevel();

}  // namespace

LogSink* SetLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  LogSink* previous = g_sink;
  g_sink = sink;
  return previous;
}

void SetMinLogLevel(LogLevel level) {
  std::lock_guard<std::mutex> lock(LogMutex());
  g_min_level = level;
}

LogLevel MinLogLevel() {
  std::lock_guard<std::mutex> lock(LogMutex());
  return g_min_level;
}

void EmitLogLine(LogLevel level, const std::string& line) {
  std::lock_guard<std::mutex> lock(LogMutex());
  // Fatal always reaches the sink: it is about to abort the process and
  // suppressing its last words would hide the reason.
  if (level < g_min_level && level != LogLevel::kFatal) return;
  LogSink* sink = g_sink != nullptr ? g_sink : &DefaultSink();
  sink->Write(level, line);
}

}  // namespace internal_logging
}  // namespace kamino
