#ifndef KAMINO_COMMON_LOGGING_H_
#define KAMINO_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace kamino {
namespace internal_logging {

/// Severity levels for KAMINO_LOG.
enum class LogLevel { kInfo, kWarning, kError, kFatal };

/// Stream-style log sink that writes a single line to stderr on destruction.
/// Fatal messages abort the process after being flushed.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << file << ":" << line << "] ";
  }

  ~LogMessage() {
    stream_ << "\n";
    std::cerr << stream_.str();
    if (level_ == LogLevel::kFatal) {
      std::cerr.flush();
      std::abort();
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
      case LogLevel::kFatal:
        return "FATAL";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace kamino

#define KAMINO_LOG(level)                                  \
  ::kamino::internal_logging::LogMessage(                  \
      ::kamino::internal_logging::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Used for programmer errors
/// (violated invariants), not for recoverable input validation - the latter
/// returns Status.
#define KAMINO_CHECK(cond)                                      \
  if (!(cond)) KAMINO_LOG(Fatal) << "Check failed: " #cond " "

#endif  // KAMINO_COMMON_LOGGING_H_
