#ifndef KAMINO_COMMON_LOGGING_H_
#define KAMINO_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace kamino {
namespace internal_logging {

/// Severity levels for KAMINO_LOG.
enum class LogLevel { kInfo, kWarning, kError, kFatal };

/// Receives fully formatted log lines (one '\n'-terminated line per
/// message). `Write` calls are serialized by the logging mutex, so sinks
/// need no locking of their own. The default sink writes to stderr.
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(LogLevel level, const std::string& line) = 0;
};

/// Installs `sink` as the process-wide log destination and returns the
/// previous one (nullptr restores the default stderr sink). The caller
/// keeps ownership; the sink must outlive its installation. Thread-safe;
/// tests use this to capture log output.
LogSink* SetLogSink(LogSink* sink);

/// Messages below `level` are discarded (Fatal is never discarded — it
/// must still print and abort). The initial threshold comes from the
/// KAMINO_LOG_LEVEL environment variable ("INFO"/"WARNING"/"ERROR"/
/// "FATAL", case-insensitive, or 0-3), defaulting to Info.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// Routes one formatted line to the installed sink under the logging
/// mutex (concurrent messages never interleave mid-line), applying the
/// severity threshold. Fatal messages abort after the sink returns.
void EmitLogLine(LogLevel level, const std::string& line);

/// Stream-style message builder: buffers locally, emits one line through
/// the mutex-protected sink on destruction. Fatal messages abort the
/// process after being flushed.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    stream_ << "[" << Name(level) << " " << file << ":" << line << "] ";
  }

  ~LogMessage() {
    stream_ << "\n";
    EmitLogLine(level_, stream_.str());
    if (level_ == LogLevel::kFatal) {
      std::abort();
    }
  }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  static const char* Name(LogLevel level) {
    switch (level) {
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
      case LogLevel::kFatal:
        return "FATAL";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace kamino

#define KAMINO_LOG(level)                                  \
  ::kamino::internal_logging::LogMessage(                  \
      ::kamino::internal_logging::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Used for programmer errors
/// (violated invariants), not for recoverable input validation - the latter
/// returns Status.
#define KAMINO_CHECK(cond)                                      \
  if (!(cond)) KAMINO_LOG(Fatal) << "Check failed: " #cond " "

#endif  // KAMINO_COMMON_LOGGING_H_
