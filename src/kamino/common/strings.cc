#include "kamino/common/strings.h"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace kamino {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

Result<double> ParseDouble(std::string_view text) {
  std::string_view t = Trim(text);
  if (t.empty()) return Status::InvalidArgument("empty number");
  // std::from_chars for double is not available on all libstdc++ configs;
  // use strtod on a bounded copy instead.
  std::string buf(t);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("bad double: '" + buf + "'");
  }
  return v;
}

Result<int64_t> ParseInt(std::string_view text) {
  std::string_view t = Trim(text);
  if (t.empty()) return Status::InvalidArgument("empty integer");
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), v);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    return Status::InvalidArgument("bad integer: '" + std::string(t) + "'");
  }
  return v;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace kamino
