#include "kamino/common/rng.h"

#include <sstream>

namespace kamino {

RngState SnapshotEngine(const std::mt19937_64& engine) {
  std::ostringstream os;
  os << engine;
  return RngState{os.str()};
}

Status RestoreEngine(const RngState& state, std::mt19937_64* engine) {
  std::istringstream is(state.text);
  std::mt19937_64 parsed;
  is >> parsed;
  if (is.fail()) {
    return Status::InvalidArgument("malformed mt19937_64 state snapshot");
  }
  *engine = parsed;
  return Status::OK();
}

size_t Rng::Discrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w > 0.0) total += w;
  }
  if (total <= 0.0) {
    if (weights.empty()) return 0;
    return static_cast<size_t>(
        UniformInt(0, static_cast<int64_t>(weights.size()) - 1));
  }
  double r = Uniform(0.0, total);
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] > 0.0) {
      acc += weights[i];
      if (r < acc) return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace kamino
