#ifndef KAMINO_COMMON_STATUS_H_
#define KAMINO_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace kamino {

/// Error categories used across the library. Mirrors the coarse-grained
/// code sets of Arrow/RocksDB-style status objects.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kNotImplemented,
  kCancelled,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of a fallible operation without a payload.
///
/// The library does not use C++ exceptions; every operation that can fail
/// returns a `Status` (or a `Result<T>` when it also produces a value).
/// A default-constructed `Status` is OK and carries no message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. Use the named
  /// factories below in preference to calling this directly.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders as "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A value-or-error holder, analogous to `arrow::Result<T>`.
///
/// Holds either a `T` (when `ok()`) or a non-OK `Status`. Accessing the
/// value of an errored result aborts in debug builds and is undefined
/// otherwise, so callers must check `ok()` (or use the KAMINO_ASSIGN_OR_RETURN
/// macro) first.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (an OK result).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Moves the value out of the result. Requires `ok()`.
  T TakeValue() { return *std::move(value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the enclosing function.
#define KAMINO_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::kamino::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                      \
  } while (false)

#define KAMINO_CONCAT_IMPL_(x, y) x##y
#define KAMINO_CONCAT_(x, y) KAMINO_CONCAT_IMPL_(x, y)

/// Evaluates `rexpr` (a Result<T>), propagating its status on error and
/// otherwise assigning the value to `lhs`.
#define KAMINO_ASSIGN_OR_RETURN(lhs, rexpr)                            \
  KAMINO_ASSIGN_OR_RETURN_IMPL_(KAMINO_CONCAT_(_res_, __LINE__), lhs,  \
                                rexpr)

#define KAMINO_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).TakeValue();

}  // namespace kamino

#endif  // KAMINO_COMMON_STATUS_H_
