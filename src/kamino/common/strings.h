#ifndef KAMINO_COMMON_STRINGS_H_
#define KAMINO_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "kamino/common/status.h"

namespace kamino {

/// Splits `text` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Parses a double, rejecting trailing garbage.
Result<double> ParseDouble(std::string_view text);

/// Parses a signed 64-bit integer, rejecting trailing garbage.
Result<int64_t> ParseInt(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace kamino

#endif  // KAMINO_COMMON_STRINGS_H_
